(** SLUB-style slab allocator over the simulated kernel heap.

    Faithful in the properties the paper's evaluation depends on:
    size-class rounding (an overflowed size yields an undersized
    object), sequential carving (objects of one class are adjacent —
    the CAN BCM exploit's victim placement), and LIFO reuse of freed
    slots (its grooming step). *)

type class_ = {
  obj_size : int;
  mutable cur_page : int;
  mutable next_off : int;
  free : int Stack.t;
}

type t = {
  mem : Kmem.t;
  cycles : Kcycles.t;
  classes : class_ array;
  mutable heap_cursor : int;
  live : (int, int) Hashtbl.t;  (** object addr -> allocated (class) size *)
  mutable alloc_count : int;
  mutable free_count : int;
  mutable finject : Finject.t option;
      (** when armed, {!kmalloc} consults it and raises {!Out_of_memory}
          at the injected event *)
}

val size_classes : int array

exception Out_of_memory
exception Bad_free of int

val create : Kmem.t -> Kcycles.t -> t

val kmalloc : t -> int -> int
(** Allocate (zeroed); returns the object address.  The usable size is
    the size class's, which is what LXFI's kmalloc annotation grants
    WRITE for.  Raises [Invalid_argument] for sizes <= 0. *)

val usable_size : t -> int -> int
(** Actual (class) size of a live object.  Raises {!Bad_free} for
    non-live addresses. *)

val kfree : t -> int -> unit
(** Free; double/bad frees raise {!Bad_free}.  Freed class slots are
    reused LIFO. *)

val is_live : t -> int -> bool
val live_objects : t -> int
val allocations : t -> int
val frees : t -> int

val alloc_pages : t -> int -> int
(** Whole pages for non-slab consumers (module sections, stacks). *)

(** SLUB-style slab allocator over the simulated kernel heap.

    Faithful in the two properties the paper's evaluation depends on:

    - {b size classes}: a request is rounded up to the next class, so an
      integer-overflowed size (CAN BCM, CVE-2010-2959) yields an
      undersized object while the caller believes it got more;
    - {b adjacency}: objects of one class are carved sequentially from
      the same slab page, so the CAN BCM exploit can arrange a victim
      object ([struct shmid_kernel] in the original) to sit directly
      after the undersized buffer and corrupt it with an out-of-bounds
      write.

    [kmalloc] returns the object address; LXFI's annotation on kmalloc
    grants the calling module a WRITE capability for the {e actual}
    allocated size — which is exactly how LXFI stops the CAN BCM
    exploit. *)

type class_ = {
  obj_size : int;
  mutable cur_page : int;  (** current partially-carved slab page, 0 if none *)
  mutable next_off : int;  (** carve offset within [cur_page] *)
  free : int Stack.t;  (** freed objects, reused LIFO like SLUB *)
}

type t = {
  mem : Kmem.t;
  cycles : Kcycles.t;
  classes : class_ array;
  mutable heap_cursor : int;  (** bump pointer for fresh slab / large pages *)
  live : (int, int) Hashtbl.t;  (** object addr -> allocated (class) size *)
  mutable alloc_count : int;
  mutable free_count : int;
  mutable finject : Finject.t option;
      (** when armed, {!kmalloc} consults it and may fail on purpose *)
}

let size_classes = [| 16; 32; 64; 96; 128; 192; 256; 512; 1024; 2048; 4096 |]

exception Out_of_memory
exception Bad_free of int

let create mem cycles =
  {
    mem;
    cycles;
    classes =
      Array.map
        (fun s -> { obj_size = s; cur_page = 0; next_off = 0; free = Stack.create () })
        size_classes;
    heap_cursor = Kmem.Layout.kernel_heap_base;
    live = Hashtbl.create 256;
    alloc_count = 0;
    free_count = 0;
    finject = None;
  }

let fresh_pages t n =
  let addr = t.heap_cursor in
  t.heap_cursor <- t.heap_cursor + (n * Kmem.page_size);
  Kmem.map t.mem ~addr ~len:(n * Kmem.page_size);
  addr

let class_for t size =
  let n = Array.length t.classes in
  let rec go i =
    if i >= n then None
    else if t.classes.(i).obj_size >= size then Some t.classes.(i)
    else go (i + 1)
  in
  go 0

(** [kmalloc t size] allocates [size] bytes ([size >= 1]); the object is
    zeroed (we model the common kzalloc-ish discipline so that
    writer-set semantics — "since the last time the location was
    zeroed" — are well defined at allocation).  Returns the address.

    The usable size is [usable_size t addr], which may exceed [size]
    (size-class rounding); LXFI grants WRITE for the usable size, as the
    kernel's annotation on kmalloc does in the paper. *)
let kmalloc t size =
  if size <= 0 then invalid_arg "Slab.kmalloc: size <= 0";
  Kcycles.charge t.cycles Kcycles.Kernel 25;
  (match t.finject with
  | Some fi when Finject.fires fi Finject.Alloc_fail -> raise Out_of_memory
  | _ -> ());
  t.alloc_count <- t.alloc_count + 1;
  match class_for t size with
  | Some c ->
      let addr =
        if not (Stack.is_empty c.free) then Stack.pop c.free
        else begin
          if c.cur_page = 0 || c.next_off + c.obj_size > Kmem.page_size then begin
            c.cur_page <- fresh_pages t 1;
            c.next_off <- 0
          end;
          let a = c.cur_page + c.next_off in
          c.next_off <- c.next_off + c.obj_size;
          a
        end
      in
      Kmem.zero t.mem ~addr ~len:c.obj_size;
      Hashtbl.replace t.live addr c.obj_size;
      if !Trace.on then Trace.emit (Trace.Slab_alloc (addr, c.obj_size));
      addr
  | None ->
      (* Large allocation: whole pages. *)
      let npages = (size + Kmem.page_size - 1) / Kmem.page_size in
      let addr = fresh_pages t npages in
      Hashtbl.replace t.live addr (npages * Kmem.page_size);
      if !Trace.on then Trace.emit (Trace.Slab_alloc (addr, npages * Kmem.page_size));
      addr

(** Actual usable size of a live object (class size, not request size). *)
let usable_size t addr =
  match Hashtbl.find_opt t.live addr with
  | Some s -> s
  | None -> raise (Bad_free addr)

let kfree t addr =
  Kcycles.charge t.cycles Kcycles.Kernel 18;
  match Hashtbl.find_opt t.live addr with
  | None -> raise (Bad_free addr)
  | Some size ->
      Hashtbl.remove t.live addr;
      t.free_count <- t.free_count + 1;
      if !Trace.on then Trace.emit (Trace.Slab_free addr);
      (match class_for t size with
      | Some c when c.obj_size = size -> Stack.push addr c.free
      | _ -> () (* large allocation: pages leak back to nothing; fine for sim *));
      ()

let is_live t addr = Hashtbl.mem t.live addr
let live_objects t = Hashtbl.length t.live
let allocations t = t.alloc_count
let frees t = t.free_count

(** Direct page allocation for non-slab consumers (module sections,
    thread stacks, DMA rings). *)
let alloc_pages t n = fresh_pages t n

(** Deterministic, seeded fault-injection engine.

    One engine instance drives every injector in the simulation.  All
    randomness derives from the seed via a splitmix64 stream, so the
    same seed makes identical decisions on every run — the property the
    faultsim campaign report depends on. *)

type site =
  | Alloc_fail  (** make {!Slab.kmalloc} raise [Out_of_memory] *)
  | Drop_grant  (** silently drop an LXFI capability grant *)
  | Corrupt_slot  (** overwrite a function-pointer slot with garbage *)

val site_name : site -> string

type plan =
  | Nth of int  (** fire on the [n]th eligible event (1-based), once *)
  | Prob of float  (** fire each eligible event with this probability *)

type t

val create : seed:int -> t
val arm : t -> site -> plan -> unit
(** Start injecting at a site; resets its event counter so [Nth n]
    counts from this moment. *)

val disarm : t -> site -> unit
val disarm_all : t -> unit

val fires : t -> site -> bool
(** Called by the instrumented operation at each eligible event; [true]
    means "inject the fault here".  Counts the event either way. *)

val seen : t -> site -> int
(** Eligible events observed at a site since it was last armed. *)

val fired : t -> site -> int
(** Faults actually injected at a site since [create]. *)

val pick : t -> int -> int
(** Deterministic integer in [0, n).  Advances the stream. *)

val garbage_addr : t -> int
(** A recognisably-wild kernel address for slot corruption. *)

val pp : Format.formatter -> t -> unit

(** Simulated 64-bit kernel address space.

    A sparse, page-granular byte store.  Addresses are plain OCaml [int]s
    (63 bits — ample for the layout below).  Nothing here enforces
    protection: as on real x86-64, the kernel is a single privilege
    domain, and every write a module performs lands directly in this
    store.  All isolation is provided by the LXFI layer above, which
    guards module stores and boundary crossings.

    The address-space layout mirrors Linux well enough for the paper's
    exploits to be expressed naturally:

    - a user-space range (attacker-controlled; the RDS and Econet
      exploits make the kernel write into, or call into, this range);
    - kernel text (exported functions get addresses here);
    - kernel heap (slab pages);
    - kernel stacks (with adjacent LXFI shadow stacks);
    - module area (per-module text/rodata/data/bss/stack sections). *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

(** Address-space layout constants. *)
module Layout = struct
  let null_guard_top = 0x1000

  (** User mappings: [0x1000, 0x8000_0000). *)
  let user_base = 0x1000

  let user_top = 0x8000_0000

  (** Kernel text: exported kernel functions are assigned fake text
      addresses here so CALL capabilities and indirect calls can refer to
      them uniformly. *)
  let kernel_text_base = 0x1_0000_0000

  (** Kernel heap: slab allocator pages. *)
  let kernel_heap_base = 0x2_0000_0000

  (** Kernel thread stacks (and their adjacent shadow stacks). *)
  let kernel_stack_base = 0x3_0000_0000

  (** Module sections: text, rodata, data, bss, module stacks. *)
  let module_base = 0x4_0000_0000

  let is_null a = a >= 0 && a < null_guard_top
  let is_user a = a >= user_base && a < user_top
  let is_kernel a = a >= kernel_text_base
  let is_module_area a = a >= module_base
end

(** Raised on access to unmapped or null addresses; the kernel substrate
    catches this at the syscall boundary and runs the oops path, exactly
    where CVE-2010-4258's [do_exit] bug lives. *)
exception Fault of { addr : int; write : bool }

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable mapped_pages : int;
  mutable fault_on_unmapped : bool;
      (** when false (default), reads of unmapped pages yield zeroes and
          writes map the page on demand; tests can tighten this *)
  mutable last_idx : int;  (** single-entry page-lookup cache (TLB of one) *)
  mutable last_page : Bytes.t;
}

let create () =
  {
    pages = Hashtbl.create 1024;
    mapped_pages = 0;
    fault_on_unmapped = false;
    last_idx = -1;
    last_page = Bytes.empty;
  }

(* Pages are never unmapped, so the cache needs no invalidation. *)
let page_of t ~write addr =
  if Layout.is_null addr || addr < 0 then raise (Fault { addr; write });
  let idx = addr lsr page_shift in
  if idx = t.last_idx then t.last_page
  else
    match Hashtbl.find_opt t.pages idx with
    | Some b ->
        t.last_idx <- idx;
        t.last_page <- b;
        b
    | None ->
        if t.fault_on_unmapped then raise (Fault { addr; write })
        else begin
          let b = Bytes.make page_size '\000' in
          Hashtbl.replace t.pages idx b;
          t.mapped_pages <- t.mapped_pages + 1;
          t.last_idx <- idx;
          t.last_page <- b;
          b
        end

(** [map t ~addr ~len] eagerly maps (zero-filled) all pages covering
    [addr, addr+len). *)
let map t ~addr ~len =
  let first = addr lsr page_shift and last = (addr + len - 1) lsr page_shift in
  for idx = first to last do
    if not (Hashtbl.mem t.pages idx) then begin
      Hashtbl.replace t.pages idx (Bytes.make page_size '\000');
      t.mapped_pages <- t.mapped_pages + 1
    end
  done

let read_u8 t addr =
  let b = page_of t ~write:false addr in
  Char.code (Bytes.get b (addr land page_mask))

let write_u8 t addr v =
  let b = page_of t ~write:true addr in
  Bytes.set b (addr land page_mask) (Char.chr (v land 0xff))

(** [read t ~addr ~size] reads a little-endian [size]-byte integer
    ([size] in 1..8) and returns it as an [int64].  Power-of-two sizes
    that stay within one page are single word accesses; everything else
    falls back to the byte loop. *)
let read t ~addr ~size =
  assert (size >= 1 && size <= 8);
  let off = addr land page_mask in
  if off + size <= page_size then
    let b = page_of t ~write:false addr in
    match size with
    | 1 -> Int64.of_int (Bytes.get_uint8 b off)
    | 2 -> Int64.of_int (Bytes.get_uint16_le b off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xffff_ffffL
    | 8 -> Bytes.get_int64_le b off
    | _ ->
        let v = ref 0L in
        for i = size - 1 downto 0 do
          v :=
            Int64.logor (Int64.shift_left !v 8)
              (Int64.of_int (Bytes.get_uint8 b (off + i)))
        done;
        !v
  else begin
    let v = ref 0L in
    for i = size - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (addr + i)))
    done;
    !v
  end

(** [write t ~addr ~size v] stores the low [size] bytes of [v]
    little-endian at [addr]. *)
let write t ~addr ~size v =
  assert (size >= 1 && size <= 8);
  let off = addr land page_mask in
  if off + size <= page_size then
    let b = page_of t ~write:true addr in
    match size with
    | 1 -> Bytes.set_uint8 b off (Int64.to_int v land 0xff)
    | 2 -> Bytes.set_uint16_le b off (Int64.to_int v land 0xffff)
    | 4 -> Bytes.set_int32_le b off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le b off v
    | _ ->
        for i = 0 to size - 1 do
          Bytes.set_uint8 b (off + i)
            (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
        done
  else
    for i = 0 to size - 1 do
      write_u8 t (addr + i)
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
    done

let read_u64 t addr = read t ~addr ~size:8
let write_u64 t addr v = write t ~addr ~size:8 v
let read_u32 t addr = Int64.to_int (read t ~addr ~size:4)
let write_u32 t addr v = write t ~addr ~size:4 (Int64.of_int v)

(** Pointer-sized loads/stores; pointers are stored as 8-byte values. *)
let read_ptr t addr = Int64.to_int (read t ~addr ~size:8)

let write_ptr t addr p = write t ~addr ~size:8 (Int64.of_int p)

(* Bulk operations walk the range one page-sized chunk at a time. *)

let read_bytes t ~addr ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = a land page_mask in
    let chunk = min (len - !pos) (page_size - off) in
    let b = page_of t ~write:false a in
    Bytes.blit b off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t ~addr s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = a land page_mask in
    let chunk = min (len - !pos) (page_size - off) in
    let b = page_of t ~write:true a in
    Bytes.blit_string s !pos b off chunk;
    pos := !pos + chunk
  done

let zero t ~addr ~len =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = a land page_mask in
    let chunk = min (len - !pos) (page_size - off) in
    let b = page_of t ~write:true a in
    Bytes.fill b off chunk '\000';
    pos := !pos + chunk
  done

(** [blit t ~src ~dst ~len] copies [len] bytes within the address space
    (used by the simulated [memcpy] / [copy_to_user] paths). *)
let blit t ~src ~dst ~len =
  let tmp = read_bytes t ~addr:src ~len in
  write_bytes t ~addr:dst (Bytes.to_string tmp)

let mapped_pages t = t.mapped_pages

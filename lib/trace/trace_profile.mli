(** Aggregation over a {!Trace} buffer: per-principal and
    per-kernel-entry-point profiles, a text report, and Chrome
    trace-event JSON export. *)

type principal_stat = {
  ps_principal : string;
  mutable ps_events : int;
  mutable ps_kernel : int;
  mutable ps_module : int;
  mutable ps_guard : int;
  ps_guards : int array;  (** indexed by {!Trace.guard_index} *)
  mutable ps_caps_granted : int;
  mutable ps_caps_revoked : int;
  mutable ps_switches : int;
  mutable ps_violations : int;
}

val ps_total : principal_stat -> int
(** Cycles attributed to the principal, all categories. *)

type entry_stat = {
  es_wrapper : string;
  mutable es_calls : int;
  mutable es_cycles_incl : int;
  mutable es_cycles_self : int;
}

type t = {
  pr_principals : principal_stat list;  (** sorted by cycles, descending *)
  pr_entries : entry_stat list;  (** kernel→module entry points *)
  pr_kexports : entry_stat list;  (** module→kernel wrapper calls *)
  pr_events : int;
  pr_emitted : int;
  pr_dropped : int;
  pr_total_cycles : int;
}

val aggregate : ?final:int * int * int -> Trace.t -> t
(** Build the profile.  [final] is the (kernel, module, guard) cycle
    clock at aggregation time; the per-principal cycle totals then sum
    exactly to it (see {!attributed_cycles}). *)

val attributed_cycles : t -> int
(** Sum of per-principal cycles; equals [pr_total_cycles] when [final]
    was supplied to {!aggregate}. *)

val report : Format.formatter -> t -> unit
val report_string : t -> string

val to_chrome_json : Trace.t -> string
(** Chrome trace-event JSON (chrome://tracing / Perfetto): wrapper
    spans as "X" complete events, violations / quarantines /
    escalations / injected faults as instants, one track per
    principal.  Deterministic for a fixed input. *)

val write_chrome_json : string -> Trace.t -> unit

(** Bounded ring-buffer event tracing for the simulated kernel.

    An ftrace-style observability layer: hook points in the runtime,
    the MIR interpreter, the quarantine policy, the slab allocator and
    the fault injector emit typed events, each stamped with the
    simulated cycle clock (split by {!Kcycles} category) and the
    current principal.  The buffer is a fixed-capacity ring that keeps
    the {e newest} events; aggregation and export live in
    {!Trace_profile}.

    {2 Zero cost when disabled}

    Tracing is off by default.  Every hook site is guarded by a single
    flag check — [if !Trace.on then ...] — and constructs nothing (no
    event, no strings, no closure) unless the flag is set, so a build
    with tracing compiled in but disabled runs the exact same
    instruction stream it would without the hooks (see DESIGN.md,
    "Tracing").  Guard counters and simulated cycle totals are byte
    identical either way: emitting an event never charges cycles.

    {2 Layering}

    This library sits {e below} [kernel_sim] in the dependency order,
    so it cannot read the cycle clock or the current principal itself.
    Both are supplied as provider callbacks by {!attach} — the LXFI
    runtime installs providers that read its own state
    ([Lxfi.Runtime.attach_trace]).

    {2 Determinism}

    Events carry only simulated quantities (cycle stamps, simulated
    addresses, principal descriptions), so a trace of a fixed-seed
    workload is byte-identical across runs — the property the CI trace
    smoke step diffs for. *)

(** Guard hit types, mirroring the {!Lxfi.Stats} counters. *)
type guard =
  | Gentry  (** wrapper/function entry guard *)
  | Gexit
  | Gwrite  (** module store guard *)
  | Gindcall  (** module-side indirect-call guard *)
  | Gkindcall_checked  (** kernel indirect call, full capability check *)
  | Gkindcall_elided  (** kernel indirect call, writer-set fast path *)

let guard_name = function
  | Gentry -> "entry"
  | Gexit -> "exit"
  | Gwrite -> "write"
  | Gindcall -> "indcall"
  | Gkindcall_checked -> "kindcall-checked"
  | Gkindcall_elided -> "kindcall-elided"

let guard_count = 6
let guard_index = function
  | Gentry -> 0
  | Gexit -> 1
  | Gwrite -> 2
  | Gindcall -> 3
  | Gkindcall_checked -> 4
  | Gkindcall_elided -> 5

(** Wrapper direction: a kernel→module crossing is a kernel entry
    point (the unit the per-entry-point profile attributes to); a
    module→kernel crossing is an annotated kexport call. *)
type span = K2m | M2k

type cap_op =
  | Grant
  | Revoke
  | Dropped  (** grant suppressed by fault injection *)

let cap_op_name = function
  | Grant -> "grant"
  | Revoke -> "revoke"
  | Dropped -> "dropped"

type kind =
  | Guard of guard
  | Cap of cap_op * string * string
      (** operation, capability, annotation context (e.g. "copy(post)") *)
  | Switch of string  (** principal switch; payload = new principal *)
  | Span_begin of span * string  (** wrapper entered *)
  | Span_end of span * string  (** wrapper left (including exception paths) *)
  | Violation of string * string  (** violation kind name, module *)
  | Quarantine of string * string  (** principal description, reason *)
  | Escalation of string * string  (** module, reason *)
  | Slab_alloc of int * int  (** address, size *)
  | Slab_free of int  (** address *)
  | Fault_injected of string  (** injection site name *)
  | Mod_call of string  (** intra-module function activation *)

type event = {
  ev_kernel : int;  (** cycle stamp, Kernel category *)
  ev_module : int;  (** cycle stamp, Module category *)
  ev_guard : int;  (** cycle stamp, Guard category *)
  ev_principal : string;  (** "(kernel)" when no module principal runs *)
  ev_kind : kind;
}

let ev_total e = e.ev_kernel + e.ev_module + e.ev_guard

type t = {
  capacity : int;
  ring : event array;
  mutable next : int;  (** next write slot *)
  mutable total : int;  (** events ever emitted *)
}

let default_capacity = 65_536

let dummy =
  { ev_kernel = 0; ev_module = 0; ev_guard = 0; ev_principal = ""; ev_kind = Guard Gentry }

let make ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.make: capacity <= 0";
  { capacity; ring = Array.make capacity dummy; next = 0; total = 0 }

(** The single flag every hook site checks.  Reading a [bool ref] is
    the whole disabled-path cost. *)
let on = ref false

let current : t option ref = ref None
let clock : (unit -> int * int * int) ref = ref (fun () -> (0, 0, 0))
let principal : (unit -> string) ref = ref (fun () -> "(kernel)")

(** [attach buf ~clock ~principal] makes [buf] the live trace sink and
    turns the flag on.  [clock] returns the (kernel, module, guard)
    cycle totals; [principal] describes the currently running
    principal. *)
let attach buf ~clock:ck ~principal:pr =
  current := Some buf;
  clock := ck;
  principal := pr;
  on := true

(** [detach ()] turns tracing off and forgets the providers.  The
    buffer keeps its events for aggregation. *)
let detach () =
  on := false;
  current := None;
  clock := (fun () -> (0, 0, 0));
  principal := (fun () -> "(kernel)")

(** [attached ()] — the live sink, if any. *)
let attached () = !current

(** [emit kind] appends an event stamped with the current clock and
    principal.  No-op when no buffer is attached; hook sites guard with
    [!on] anyway so the disabled path never reaches here. *)
let emit kind =
  match !current with
  | None -> ()
  | Some t ->
      let k, m, g = !clock () in
      t.ring.(t.next) <-
        { ev_kernel = k; ev_module = m; ev_guard = g; ev_principal = !principal (); ev_kind = kind };
      t.next <- (t.next + 1) mod t.capacity;
      t.total <- t.total + 1

let total t = t.total
let dropped t = max 0 (t.total - t.capacity)
let capacity t = t.capacity

let clear t =
  t.next <- 0;
  t.total <- 0

(** [events t] — retained events, oldest first.  When the ring wrapped,
    these are the newest [capacity t] events. *)
let events t =
  let n = min t.total t.capacity in
  if t.total <= t.capacity then Array.sub t.ring 0 n
  else Array.init n (fun i -> t.ring.((t.next + i) mod t.capacity))

let kind_label = function
  | Guard g -> "guard:" ^ guard_name g
  | Cap (op, cap, ctx) ->
      Printf.sprintf "cap-%s %s%s" (cap_op_name op) cap
        (if ctx = "" then "" else " [" ^ ctx ^ "]")
  | Switch p -> "switch -> " ^ p
  | Span_begin (K2m, w) -> "enter " ^ w
  | Span_begin (M2k, w) -> "call " ^ w
  | Span_end (K2m, w) -> "leave " ^ w
  | Span_end (M2k, w) -> "ret " ^ w
  | Violation (k, m) -> Printf.sprintf "VIOLATION [%s] in %s" k m
  | Quarantine (p, r) -> Printf.sprintf "QUARANTINE %s (%s)" p r
  | Escalation (m, r) -> Printf.sprintf "ESCALATION %s (%s)" m r
  | Slab_alloc (addr, size) -> Printf.sprintf "slab-alloc 0x%x +%d" addr size
  | Slab_free addr -> Printf.sprintf "slab-free 0x%x" addr
  | Fault_injected site -> "FAULT-INJECTED " ^ site
  | Mod_call f -> "mcall " ^ f

let pp_event ppf e =
  Fmt.pf ppf "[%10d] %-28s %s" (ev_total e) e.ev_principal (kind_label e.ev_kind)

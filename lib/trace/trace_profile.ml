(** Aggregation over a {!Trace} buffer: per-principal and
    per-kernel-entry-point profiles ("perf top" for principals), a text
    report, and Chrome trace-event JSON export.

    {2 Cycle attribution}

    Events are stamped with the running (kernel, module, guard) cycle
    totals.  The interval between two consecutive events is attributed
    to the principal recorded on the {e earlier} event — the principal
    that was executing when those cycles were charged.  Cycles before
    the first retained event go to the pseudo-principal ["(pre-trace)"]
    (non-zero only after ring wraparound or late attach) and cycles
    after the last event to the principal left running by it, so the
    per-principal totals always sum to exactly the final {!Kcycles}
    reading — the reconciliation property the acceptance test pins. *)

type principal_stat = {
  ps_principal : string;
  mutable ps_events : int;
  mutable ps_kernel : int;  (** cycles by category, interval-attributed *)
  mutable ps_module : int;
  mutable ps_guard : int;
  ps_guards : int array;  (** hit counts, indexed by {!Trace.guard_index} *)
  mutable ps_caps_granted : int;
  mutable ps_caps_revoked : int;
  mutable ps_switches : int;
  mutable ps_violations : int;
}

let ps_total p = p.ps_kernel + p.ps_module + p.ps_guard

type entry_stat = {
  es_wrapper : string;
  mutable es_calls : int;
  mutable es_cycles_incl : int;  (** wrapper entry to exit, children included *)
  mutable es_cycles_self : int;  (** minus nested wrapper spans *)
}

type t = {
  pr_principals : principal_stat list;  (** sorted by total cycles, descending *)
  pr_entries : entry_stat list;  (** kernel entry points, by inclusive cycles *)
  pr_kexports : entry_stat list;  (** module→kernel wrappers, by inclusive cycles *)
  pr_events : int;  (** events aggregated (retained in the ring) *)
  pr_emitted : int;  (** events ever emitted *)
  pr_dropped : int;
  pr_total_cycles : int;  (** final clock; equals the sum over principals *)
}

(* Deterministic string-keyed accumulation: an ordered assoc list keyed
   by first appearance, so no Hashtbl iteration order leaks into the
   report. *)
type 'a acc = { mutable items : (string * 'a) list (* newest first *) }

let acc_get acc key fresh =
  match List.assoc_opt key acc.items with
  | Some v -> v
  | None ->
      let v = fresh key in
      acc.items <- (key, v) :: acc.items;
      v

let acc_values acc = List.rev_map snd acc.items

let fresh_principal key =
  {
    ps_principal = key;
    ps_events = 0;
    ps_kernel = 0;
    ps_module = 0;
    ps_guard = 0;
    ps_guards = Array.make Trace.guard_count 0;
    ps_caps_granted = 0;
    ps_caps_revoked = 0;
    ps_switches = 0;
    ps_violations = 0;
  }

let fresh_entry key = { es_wrapper = key; es_calls = 0; es_cycles_incl = 0; es_cycles_self = 0 }

(** [aggregate ?final buf] — build the profile.  [final] is the cycle
    clock at aggregation time ((kernel, module, guard), e.g. from
    {!Kcycles}); when omitted, the last event's stamp is used and the
    trailing interval is empty. *)
let aggregate ?final (buf : Trace.t) : t =
  let evs = Trace.events buf in
  let principals = { items = [] } in
  let entries = { items = [] } in
  let kexports = { items = [] } in
  let prin key = acc_get principals key fresh_principal in
  (* Interval attribution state: stamp and principal after the last
     processed event.  Cycles before the first retained event belong to
     "(pre-trace)". *)
  let last_k = ref 0 and last_m = ref 0 and last_g = ref 0 in
  let running = ref (if Array.length evs = 0 then "(kernel)" else "(pre-trace)") in
  let attribute k m g =
    let p = prin !running in
    p.ps_kernel <- p.ps_kernel + (k - !last_k);
    p.ps_module <- p.ps_module + (m - !last_m);
    p.ps_guard <- p.ps_guard + (g - !last_g);
    last_k := k;
    last_m := m;
    last_g := g
  in
  (* Span stack for entry-point attribution; begin stamp is the total
     clock, [sp_child] accumulates nested wrapper spans for self time. *)
  let stack = ref [] in
  let push kind wrapper at = stack := (kind, wrapper, at, ref 0) :: !stack in
  let pop kind wrapper at =
    match !stack with
    | (k, w, t0, child) :: rest when k = kind && w = wrapper ->
        stack := rest;
        let incl = at - t0 in
        let acc = match kind with Trace.K2m -> entries | Trace.M2k -> kexports in
        let es = acc_get acc wrapper fresh_entry in
        es.es_calls <- es.es_calls + 1;
        es.es_cycles_incl <- es.es_cycles_incl + incl;
        es.es_cycles_self <- es.es_cycles_self + (incl - !child);
        (match !stack with (_, _, _, pc) :: _ -> pc := !pc + incl | [] -> ())
    | _ ->
        (* Unmatched end: its begin fell off the ring (wraparound) —
           nothing to attribute it against. *)
        ()
  in
  Array.iter
    (fun (e : Trace.event) ->
      attribute e.Trace.ev_kernel e.Trace.ev_module e.Trace.ev_guard;
      let p = prin e.Trace.ev_principal in
      p.ps_events <- p.ps_events + 1;
      let at = Trace.ev_total e in
      (match e.Trace.ev_kind with
      | Trace.Guard g -> p.ps_guards.(Trace.guard_index g) <- p.ps_guards.(Trace.guard_index g) + 1
      | Trace.Cap (Trace.Grant, _, _) -> p.ps_caps_granted <- p.ps_caps_granted + 1
      | Trace.Cap (Trace.Revoke, _, _) -> p.ps_caps_revoked <- p.ps_caps_revoked + 1
      | Trace.Cap (Trace.Dropped, _, _) -> ()
      | Trace.Switch _ -> p.ps_switches <- p.ps_switches + 1
      | Trace.Span_begin (kind, w) -> push kind w at
      | Trace.Span_end (kind, w) -> pop kind w at
      | Trace.Violation _ -> p.ps_violations <- p.ps_violations + 1
      | Trace.Quarantine _ | Trace.Escalation _ | Trace.Slab_alloc _ | Trace.Slab_free _
      | Trace.Fault_injected _ | Trace.Mod_call _ ->
          ());
      (* After the event, the running principal is whatever it reported
         — a Switch event already carries the new principal's name in
         its payload for the *next* interval. *)
      running :=
        (match e.Trace.ev_kind with Trace.Switch to_ -> to_ | _ -> e.Trace.ev_principal))
    evs;
  (* Trailing interval up to the final clock, and spans still open at
     the end of the capture window (e.g. a trace stopped mid-entry). *)
  let fk, fm, fg =
    match final with
    | Some (k, m, g) -> (k, m, g)
    | None -> (!last_k, !last_m, !last_g)
  in
  attribute fk fm fg;
  let final_total = fk + fm + fg in
  List.iter (fun (kind, w, _, _) -> pop kind w final_total) !stack;
  let by_cycles l =
    List.sort
      (fun a b ->
        match compare (ps_total b) (ps_total a) with
        | 0 -> compare a.ps_principal b.ps_principal
        | c -> c)
      l
  in
  let by_incl l =
    List.sort
      (fun a b ->
        match compare b.es_cycles_incl a.es_cycles_incl with
        | 0 -> compare a.es_wrapper b.es_wrapper
        | c -> c)
      l
  in
  {
    pr_principals = by_cycles (acc_values principals);
    pr_entries = by_incl (acc_values entries);
    pr_kexports = by_incl (acc_values kexports);
    pr_events = Array.length evs;
    pr_emitted = Trace.total buf;
    pr_dropped = Trace.dropped buf;
    pr_total_cycles = final_total;
  }

let attributed_cycles t = List.fold_left (fun acc p -> acc + ps_total p) 0 t.pr_principals

(** {1 Text report} *)

let report ppf (t : t) =
  Fmt.pf ppf "=== trace profile: %d events aggregated (%d emitted, %d dropped) ===@."
    t.pr_events t.pr_emitted t.pr_dropped;
  Fmt.pf ppf "@.-- per-principal (cycles by category; guards by type) --@.";
  Fmt.pf ppf "%-26s %12s %10s %10s %10s  %6s %6s %6s %6s  %5s %5s %4s %4s@." "principal"
    "cycles" "kernel" "module" "guard" "entry" "exit" "write" "icall" "grant" "rvk"
    "sw" "viol";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-26s %12d %10d %10d %10d  %6d %6d %6d %6d  %5d %5d %4d %4d@."
        p.ps_principal (ps_total p) p.ps_kernel p.ps_module p.ps_guard
        p.ps_guards.(Trace.guard_index Trace.Gentry)
        p.ps_guards.(Trace.guard_index Trace.Gexit)
        p.ps_guards.(Trace.guard_index Trace.Gwrite)
        (p.ps_guards.(Trace.guard_index Trace.Gindcall)
        + p.ps_guards.(Trace.guard_index Trace.Gkindcall_checked)
        + p.ps_guards.(Trace.guard_index Trace.Gkindcall_elided))
        p.ps_caps_granted p.ps_caps_revoked p.ps_switches p.ps_violations)
    t.pr_principals;
  let entry_table title rows =
    if rows <> [] then begin
      Fmt.pf ppf "@.-- %s --@." title;
      Fmt.pf ppf "%-40s %8s %14s %14s %10s@." "wrapper" "calls" "cycles" "self" "avg";
      List.iter
        (fun e ->
          Fmt.pf ppf "%-40s %8d %14d %14d %10.1f@." e.es_wrapper e.es_calls
            e.es_cycles_incl e.es_cycles_self
            (float_of_int e.es_cycles_incl /. float_of_int (max 1 e.es_calls)))
        rows
    end
  in
  entry_table "kernel entry points (kernel->module wrappers)" t.pr_entries;
  entry_table "kernel exports called (module->kernel wrappers)" t.pr_kexports;
  Fmt.pf ppf "@.total cycles %d, attributed %d (%s)@." t.pr_total_cycles
    (attributed_cycles t)
    (if attributed_cycles t = t.pr_total_cycles then "reconciled" else "MISMATCH")

let report_string t = Fmt.str "%a" report t

(** {1 Chrome trace-event JSON}

    Loadable in chrome://tracing / Perfetto: wrapper spans become
    complete ("X") events, violations / quarantines / escalations /
    injected faults become instants, one track per principal.
    Timestamps are simulated microseconds at the paper's 3.2 GHz test
    machine (cycles / 3200). *)

let cycles_per_us = 3200.

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ts_of cycles = Printf.sprintf "%.3f" (float_of_int cycles /. cycles_per_us)

(** [to_chrome_json buf] — serialize the retained events.  Deterministic:
    thread ids are assigned in order of first appearance. *)
let to_chrome_json (buf : Trace.t) : string =
  let evs = Trace.events buf in
  let out = Buffer.create 4096 in
  let first = ref true in
  let emit_json fields =
    if !first then first := false else Buffer.add_string out ",\n";
    Buffer.add_string out "    {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string out ", ";
        Buffer.add_string out (Printf.sprintf "\"%s\": %s" k v))
      fields;
    Buffer.add_string out "}"
  in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let tids = { items = [] } in
  let next_tid = ref 0 in
  let tid_of principal =
    let v =
      acc_get tids principal (fun name ->
          let id = !next_tid in
          incr next_tid;
          emit_json
            [
              ("name", str "thread_name");
              ("ph", str "M");
              ("pid", "0");
              ("tid", string_of_int id);
              ("args", Printf.sprintf "{\"name\": %s}" (str name));
            ];
          id)
    in
    v
  in
  Buffer.add_string out "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  (* Spans: match begin/end on a stack (exporter-side, same discipline
     as the aggregator) and emit complete events so nesting renders. *)
  let stack = ref [] in
  let instant e name =
    emit_json
      [
        ("name", str name);
        ("ph", str "i");
        ("s", str "g");
        ("ts", ts_of (Trace.ev_total e));
        ("pid", "0");
        ("tid", string_of_int (tid_of e.Trace.ev_principal));
      ]
  in
  Array.iter
    (fun (e : Trace.event) ->
      let at = Trace.ev_total e in
      match e.Trace.ev_kind with
      | Trace.Span_begin (kind, w) -> stack := (kind, w, at, e.Trace.ev_principal) :: !stack
      | Trace.Span_end (kind, w) -> (
          match !stack with
          | (k, w', t0, p) :: rest when k = kind && w' = w ->
              stack := rest;
              emit_json
                [
                  ("name", str w);
                  ("ph", str "X");
                  ("ts", ts_of t0);
                  ("dur", ts_of (at - t0));
                  ("pid", "0");
                  ("tid", string_of_int (tid_of p));
                ]
          | _ -> ())
      | Trace.Violation (k, m) -> instant e (Printf.sprintf "violation:%s:%s" k m)
      | Trace.Quarantine (p, _) -> instant e ("quarantine:" ^ p)
      | Trace.Escalation (m, _) -> instant e ("escalation:" ^ m)
      | Trace.Fault_injected site -> instant e ("fault:" ^ site)
      | Trace.Guard _ | Trace.Cap _ | Trace.Switch _ | Trace.Slab_alloc _
      | Trace.Slab_free _ | Trace.Mod_call _ ->
          ())
    evs;
  (* Close spans still open at the end of the capture window. *)
  (match Array.length evs with
  | 0 -> ()
  | n ->
      let last = Trace.ev_total evs.(n - 1) in
      List.iter
        (fun (_, w, t0, p) ->
          emit_json
            [
              ("name", str (w ^ " (unfinished)"));
              ("ph", str "X");
              ("ts", ts_of t0);
              ("dur", ts_of (last - t0));
              ("pid", "0");
              ("tid", string_of_int (tid_of p));
            ])
        !stack);
  Buffer.add_string out "\n  ]\n}\n";
  Buffer.contents out

let write_chrome_json path buf =
  let oc = open_out_bin path in
  output_string oc (to_chrome_json buf);
  close_out oc

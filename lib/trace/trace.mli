(** Bounded ring-buffer event tracing for the simulated kernel.

    Hook points across the simulation emit typed events stamped with
    the simulated cycle clock and the current principal.  Off by
    default; every hook site costs a single [!on] check when disabled.
    See {!Trace_profile} for aggregation, text reports and Chrome
    trace-event export. *)

type guard =
  | Gentry
  | Gexit
  | Gwrite
  | Gindcall
  | Gkindcall_checked
  | Gkindcall_elided

val guard_name : guard -> string
val guard_count : int
val guard_index : guard -> int

type span = K2m  (** kernel→module entry point *) | M2k  (** module→kernel export *)

type cap_op = Grant | Revoke | Dropped

val cap_op_name : cap_op -> string

type kind =
  | Guard of guard
  | Cap of cap_op * string * string  (** op, capability, annotation context *)
  | Switch of string
  | Span_begin of span * string
  | Span_end of span * string
  | Violation of string * string  (** kind name, module *)
  | Quarantine of string * string  (** principal, reason *)
  | Escalation of string * string  (** module, reason *)
  | Slab_alloc of int * int  (** address, size *)
  | Slab_free of int
  | Fault_injected of string
  | Mod_call of string  (** intra-module function activation *)

type event = {
  ev_kernel : int;
  ev_module : int;
  ev_guard : int;
  ev_principal : string;
  ev_kind : kind;
}

val ev_total : event -> int
(** Total cycle stamp (sum of the three categories). *)

type t

val default_capacity : int

val make : ?capacity:int -> unit -> t
(** A fresh ring buffer; [capacity] bounds retained events (the newest
    win). *)

val on : bool ref
(** The enabled flag.  Hook sites check [!Trace.on] and must construct
    nothing when it is false — the zero-cost-when-disabled rule. *)

val attach : t -> clock:(unit -> int * int * int) -> principal:(unit -> string) -> unit
(** Make the buffer the live sink and set [on].  [clock] returns the
    (kernel, module, guard) simulated cycle totals. *)

val detach : unit -> unit
(** Clear [on] and the providers; the buffer keeps its events. *)

val attached : unit -> t option
(** The live sink, if a buffer is attached — lets observers (e.g. the
    quarantine repair path) read back the event window around a fault
    without threading the buffer through every layer. *)

val emit : kind -> unit
(** Append an event stamped with the current clock and principal.
    Call only behind an [!on] check. *)

val total : t -> int
(** Events ever emitted (including overwritten ones). *)

val dropped : t -> int
(** Events lost to ring wraparound. *)

val capacity : t -> int
val clear : t -> unit

val events : t -> event array
(** Retained events, oldest first. *)

val kind_label : kind -> string
val pp_event : Format.formatter -> event -> unit

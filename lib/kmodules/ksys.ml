(** System assembly: boot the simulated kernel, create the subsystems,
    start the LXFI runtime, and register the annotated kernel API.

    This file is the OCaml analogue of the paper's annotation corpus:
    every function-pointer {e slot type} (the interfaces through which
    the kernel calls modules) and every annotated kernel {e export}
    (the interface through which modules call the kernel) is declared
    here with its LXFI annotation string, exactly in the language of
    Figure 2.  The capability iterators referenced by the annotations
    ([skb_caps], [kmalloc_caps], ...) are registered alongside. *)

open Kernel_sim

type t = {
  kst : Kstate.t;
  rt : Lxfi.Runtime.t;
  net : Netdev.t;
  pci : Pci.t;
  sock : Sockets.t;
  blk : Blockdev.t;
  snd : Sound.t;
  shm : Shm.t;
  irq : Irqchip.t;
  mutable nics : (int * Nic.t) list;  (** pci_dev address -> NIC model *)
}

let types t = t.kst.Kstate.types
let mem t = t.kst.Kstate.mem
let off t s f = Ktypes.offset (types t) s f
let sizeof t s = Ktypes.sizeof (types t) s

(** {1 Function-pointer slot types}

    Each [define] gives a slot type its parameter names and annotation.
    These are the contracts modules inherit through annotation
    propagation when their functions are stored into the corresponding
    struct fields. *)

let register_slot_types (rt : Lxfi.Runtime.t) =
  let d name params annot_src =
    ignore (Annot.Registry.define_exn rt.Lxfi.Runtime.registry ~name ~params ~annot_src)
  in
  (* PCI: Figure 4 of the paper, verbatim contract. *)
  d "pci_driver.probe" [ "pcidev" ]
    "principal(pcidev) pre(copy(ref(struct pci_dev), pcidev)) \
     post(if (return < 0) transfer(ref(struct pci_dev), pcidev))";
  d "pci_driver.remove" [ "pcidev" ] "principal(pcidev)";
  (* Network device ops. NETDEV_TX_BUSY = 16 returns packet ownership
     to the kernel. *)
  d "net_device_ops.ndo_start_xmit" [ "skb"; "dev" ]
    "principal(dev) pre(transfer(skb_caps(skb))) \
     post(if (return == 16) transfer(skb_caps(skb)))";
  d "net_device_ops.ndo_open" [ "dev" ] "principal(dev)";
  d "net_device_ops.ndo_stop" [ "dev" ] "principal(dev)";
  d "net_device_ops.ndo_set_rx_mode" [ "dev" ] "principal(dev)";
  d "napi.poll" [ "napi"; "budget" ] "principal(napi)";
  (* Kernel-internal slots (qdisc, protocol demux): empty contracts —
     modules never legitimately implement them, and the hash check
     rejects any module function laundered into them. *)
  d "qdisc_ops.enqueue" [ "qdisc"; "skb" ] "";
  d "qdisc_ops.dequeue" [ "qdisc" ] "";
  d "packet_type.func" [ "skb" ] "";
  d "ipc_ops.getinfo" [ "seg" ] "";
  (* Interrupt handlers run as the instance named by dev_id. *)
  d "irq.handler" [ "irq"; "dev_id" ] "principal(dev_id)";
  (* Socket layer. The socket address names the instance principal;
     creation/release also touch module-global state, for which the
     module code itself switches to the global principal (§3.1). *)
  d "net_proto_family.create" [ "sock"; "type" ]
    "principal(sock) pre(copy(write, sock, sizeof(struct socket)))";
  d "proto_ops.sendmsg" [ "sock"; "buf"; "len"; "flags" ] "principal(sock)";
  d "proto_ops.recvmsg" [ "sock"; "buf"; "len"; "flags" ] "principal(sock)";
  d "proto_ops.ioctl" [ "sock"; "cmd"; "arg" ] "principal(sock)";
  d "proto_ops.bind" [ "sock"; "addr"; "alen" ] "principal(sock)";
  d "proto_ops.release" [ "sock" ] "principal(sock)";
  (* Device mapper: the dm_target address names the principal. *)
  d "target_type.ctr" [ "ti"; "arg" ]
    "principal(ti) pre(copy(write, ti, sizeof(struct dm_target)))";
  d "target_type.dtr" [ "ti" ] "principal(ti)";
  d "target_type.map" [ "ti"; "bio" ]
    "principal(ti) pre(transfer(bio_caps(bio))) post(transfer(bio_caps(bio)))";
  (* Sound. *)
  d "snd_pcm_ops.open" [ "card" ] "principal(card)";
  d "snd_pcm_ops.close" [ "card" ] "principal(card)";
  d "snd_pcm_ops.trigger" [ "card"; "cmd" ] "principal(card)";
  d "snd_pcm_ops.pointer" [ "card" ] "principal(card)"

(** {1 Capability iterators} *)

let register_iterators (t : t) =
  let rt = t.rt in
  (* Every iterator declares the capability shapes it can yield; the
     upgrade compatibility check ([Loader.upgrade]) uses the declaration
     to decide whether an annotation mentioning the iterator is part of
     a version's write/ref surface. *)
  let reg ?shapes name fn = Lxfi.Runtime.register_iterator ?shapes rt ~name fn in
  (* kmalloc_caps(p): WRITE for the object's actual (size-class) size —
     this is the precise semantics that defeats the CAN BCM overflow. *)
  reg ~shapes:[ Lxfi.Runtime.Swrite ] "kmalloc_caps" (fun _rt args ->
      match args with
      | [ p ] ->
          let p = Int64.to_int p in
          if p = 0 then []
          else if not (Slab.is_live t.kst.Kstate.slab p) then
            raise (Kstate.Oops (Printf.sprintf "kmalloc_caps: 0x%x is not a live object" p))
          else
            [ Lxfi.Capability.Cwrite { base = p; size = Slab.usable_size t.kst.Kstate.slab p } ]
      | _ -> invalid_arg "kmalloc_caps: expected 1 argument");
  (* skb_caps(skb): the Figure 4 iterator — the struct and its payload. *)
  reg ~shapes:[ Lxfi.Runtime.Swrite ] "skb_caps" (fun _rt args ->
      match args with
      | [ skb ] ->
          let skb = Int64.to_int skb in
          if skb = 0 then []
          else begin
            let data = Skbuff.data t.kst skb in
            let len = Skbuff.len t.kst skb in
            Lxfi.Capability.Cwrite { base = skb; size = sizeof t "sk_buff" }
            :: (if data <> 0 && len > 0 then
                  [ Lxfi.Capability.Cwrite { base = data; size = len } ]
                else [])
          end
      | _ -> invalid_arg "skb_caps: expected 1 argument");
  (* skb_strict_caps(skb): Guideline 4 (§6) — instead of WRITE over the
     whole sk_buff, the module receives a REF of the special type
     sk_buff_fields (unlocking the field-accessor exports below) plus
     WRITE on the payload only.  The struct itself stays out of reach:
     a compromised driver cannot redirect skb->data or forge lengths. *)
  reg
    ~shapes:[ Lxfi.Runtime.Swrite; Lxfi.Runtime.Sref "sk_buff_fields" ]
    "skb_strict_caps" (fun _rt args ->
      match args with
      | [ skb ] ->
          let skb = Int64.to_int skb in
          if skb = 0 then []
          else begin
            let data = Skbuff.data t.kst skb in
            let len = Skbuff.len t.kst skb in
            Lxfi.Capability.Cref { rtype = "sk_buff_fields"; addr = skb }
            :: (if data <> 0 && len > 0 then
                  [ Lxfi.Capability.Cwrite { base = data; size = len } ]
                else [])
          end
      | _ -> invalid_arg "skb_strict_caps: expected 1 argument");
  (* pci_bar_caps(pcidev): the device's MMIO window. *)
  reg ~shapes:[ Lxfi.Runtime.Swrite ] "pci_bar_caps" (fun _rt args ->
      match args with
      | [ dev ] ->
          let dev = Int64.to_int dev in
          let bar = Pci.bar0 t.pci dev and len = Pci.bar0_len t.pci dev in
          if bar = 0 || len = 0 then []
          else [ Lxfi.Capability.Cwrite { base = bar; size = len } ]
      | _ -> invalid_arg "pci_bar_caps: expected 1 argument");
  (* bio_caps(bio): struct + payload, like skb_caps. *)
  reg ~shapes:[ Lxfi.Runtime.Swrite ] "bio_caps" (fun _rt args ->
      match args with
      | [ bio ] ->
          let bio = Int64.to_int bio in
          if bio = 0 then []
          else begin
            let data = Kmem.read_ptr (mem t) (bio + off t "bio" "data") in
            let size = Kmem.read_u32 (mem t) (bio + off t "bio" "size") in
            Lxfi.Capability.Cwrite { base = bio; size = sizeof t "bio" }
            :: (if data <> 0 && size > 0 then
                  [ Lxfi.Capability.Cwrite { base = data; size } ]
                else [])
          end
      | _ -> invalid_arg "bio_caps: expected 1 argument");
  (* snd_card_caps(card): card struct, DMA area, and the REF that
     names the card for registration. *)
  reg
    ~shapes:[ Lxfi.Runtime.Swrite; Lxfi.Runtime.Sref "snd_card" ]
    "snd_card_caps" (fun _rt args ->
      match args with
      | [ card ] ->
          let card = Int64.to_int card in
          if card = 0 then []
          else
            [
              Lxfi.Capability.Cwrite { base = card; size = sizeof t "snd_card" };
              Lxfi.Capability.Cwrite
                {
                  base = Sound.dma_area t.snd card;
                  size = Sound.dma_bytes t.snd card;
                };
              Lxfi.Capability.Cref { rtype = "snd_card"; addr = card };
            ]
      | _ -> invalid_arg "snd_card_caps: expected 1 argument")

(** {1 Annotated kernel exports} *)

let arg n args =
  match List.nth_opt args n with
  | Some v -> Int64.to_int v
  | None -> raise (Kstate.Oops (Printf.sprintf "kernel export: missing argument %d" n))

let register_kexports (t : t) =
  let rt = t.rt in
  let kst = t.kst in
  let d name params annot_src impl =
    ignore (Lxfi.Runtime.register_kexport_exn rt ~name ~params ~annot_src impl)
  in
  (* --- memory --- *)
  d "kmalloc" [ "size" ] "post(if (return != 0) copy(kmalloc_caps(return)))"
    (fun args ->
      let size = arg 0 args in
      if size <= 0 then 0L
      else
        (* An (injected) allocation failure is NULL to the caller, as in
           the real kernel — modules must handle it. *)
        match Slab.kmalloc kst.Kstate.slab size with
        | addr -> Int64.of_int addr
        | exception Slab.Out_of_memory -> 0L);
  d "kfree" [ "ptr" ] "pre(transfer(kmalloc_caps(ptr)))" (fun args ->
      Slab.kfree kst.Kstate.slab (arg 0 args);
      0L);
  d "ksize" [ "ptr" ] "" (fun args ->
      Int64.of_int (Slab.usable_size kst.Kstate.slab (arg 0 args)));
  (* --- locking: the §1 confused-deputy example; the check annotation
     is exactly what stops a module from pointing the "lock" at the
     current process's uid. --- *)
  d "spin_lock_init" [ "lock" ] "pre(check(write, lock, 4))" (fun args ->
      Klock.spin_lock_init kst (arg 0 args);
      0L);
  d "spin_lock" [ "lock" ] "pre(check(write, lock, 4))" (fun args ->
      Klock.spin_lock kst (arg 0 args);
      0L);
  d "spin_unlock" [ "lock" ] "pre(check(write, lock, 4))" (fun args ->
      Klock.spin_unlock kst (arg 0 args);
      0L);
  (* --- uaccess --- *)
  d "copy_to_user" [ "dst"; "src"; "len" ] "" (fun args ->
      let dst = arg 0 args and src = arg 1 args and len = arg 2 args in
      (* The checked variant honours the task address limit. *)
      match
        for i = 0 to len - 1 do
          Kstate.put_user kst ~addr:(dst + i) ~size:1
            (Kmem.read kst.Kstate.mem ~addr:(src + i) ~size:1)
        done
      with
      | () -> 0L
      | exception Kstate.Efault _ -> -14L);
  d "copy_from_user" [ "dst"; "src"; "len" ] "pre(check(write, dst, len))"
    (fun args ->
      let dst = arg 0 args and src = arg 1 args and len = arg 2 args in
      match
        for i = 0 to len - 1 do
          Kmem.write kst.Kstate.mem ~addr:(dst + i) ~size:1
            (Kstate.get_user kst ~addr:(src + i) ~size:1)
        done
      with
      | () -> 0L
      | exception Kstate.Efault _ -> -14L);
  (* The unchecked copy primitive at the heart of CVE-2010-3904: the
     RDS page-copy path used it with a user-controlled destination and
     no access_ok check.  Its LXFI annotation demands the caller own
     WRITE on the destination — which the module does not, for kernel
     addresses it was never granted. *)
  d "__copy_to_user_inatomic" [ "dst"; "src"; "len" ] "pre(check(write, dst, len))"
    (fun args ->
      let dst = arg 0 args and src = arg 1 args and len = arg 2 args in
      Kmem.blit kst.Kstate.mem ~src ~dst ~len;
      0L);
  d "set_fs" [ "limit" ] "" (fun args ->
      Kstate.set_fs kst (arg 0 args);
      0L);
  d "printk" [ "level" ] "" (fun _ -> 0L);
  (* detach_pid: exported, powerful, and not imported by any module in
     the corpus — the pid-hash rootkit of §8.1 tries to reach it
     through a corrupted function pointer. *)
  d "detach_pid" [ "task" ] "pre(check(ref(struct task_struct), task))" (fun _args ->
      Kstate.detach_pid kst kst.Kstate.current;
      0L);
  (* --- sk_buffs --- *)
  d "alloc_skb" [ "len" ] "post(if (return != 0) copy(skb_caps(return)))" (fun args ->
      Int64.of_int (Skbuff.alloc kst (arg 0 args)));
  d "build_skb" [ "buf"; "len" ] "post(if (return != 0) copy(skb_caps(return)))"
    (fun args ->
      let buf = arg 0 args and len = arg 1 args in
      let skb = Slab.kmalloc kst.Kstate.slab (sizeof t "sk_buff") in
      Kmem.write_ptr kst.Kstate.mem (skb + off t "sk_buff" "head") buf;
      Kmem.write_ptr kst.Kstate.mem (skb + off t "sk_buff" "data") buf;
      Kmem.write_u32 kst.Kstate.mem (skb + off t "sk_buff" "len") len;
      Int64.of_int skb);
  d "kfree_skb" [ "skb" ] "pre(transfer(skb_caps(skb)))" (fun args ->
      Skbuff.free kst (arg 0 args);
      0L);
  d "skb_put" [ "skb"; "len" ] "pre(check(write, skb, sizeof(struct sk_buff)))"
    (fun args ->
      let skb = arg 0 args and len = arg 1 args in
      Skbuff.set_len kst skb (Skbuff.len kst skb + len);
      Int64.of_int (Skbuff.data kst skb));
  (* Guideline 4 field accessors: the kernel mutates the five fields
     drivers actually need, gated on the strict REF rather than WRITE
     over the struct. *)
  d "skb_set_dev" [ "skb"; "dev" ]
    "pre(check(ref(sk_buff_fields), skb)) pre(check(ref(struct net_device), dev))"
    (fun args ->
      Skbuff.set_dev kst (arg 0 args) (arg 1 args);
      0L);
  d "skb_set_len" [ "skb"; "len" ] "pre(check(ref(sk_buff_fields), skb))"
    (fun args ->
      Skbuff.set_len kst (arg 0 args) (arg 1 args);
      0L);
  d "build_skb_strict" [ "buf"; "len" ]
    "post(if (return != 0) copy(skb_strict_caps(return)))" (fun args ->
      let buf = arg 0 args and len = arg 1 args in
      let skb = Slab.kmalloc kst.Kstate.slab (sizeof t "sk_buff") in
      Kmem.write_ptr kst.Kstate.mem (skb + off t "sk_buff" "head") buf;
      Kmem.write_ptr kst.Kstate.mem (skb + off t "sk_buff" "data") buf;
      Kmem.write_u32 kst.Kstate.mem (skb + off t "sk_buff" "len") len;
      Int64.of_int skb);
  d "netif_rx_strict" [ "skb" ] "pre(transfer(skb_strict_caps(skb)))" (fun args ->
      Netdev.netif_rx t.net (arg 0 args));
  (* --- net core --- *)
  d "netif_rx" [ "skb" ] "pre(transfer(skb_caps(skb)))" (fun args ->
      Netdev.netif_rx t.net (arg 0 args));
  d "dev_queue_xmit" [ "skb" ] "pre(transfer(skb_caps(skb)))" (fun args ->
      Netdev.dev_queue_xmit t.net (arg 0 args));
  d "alloc_etherdev" [ "priv" ]
    "post(if (return != 0) copy(write, return, sizeof(struct net_device))) \
     post(if (return != 0) copy(ref(struct net_device), return))"
    (fun _args -> Int64.of_int (Netdev.alloc_netdev t.net ~name:"eth%d"));
  d "register_netdev" [ "dev" ] "pre(check(ref(struct net_device), dev))" (fun args ->
      Netdev.register_netdev t.net (arg 0 args));
  d "netif_napi_add" [ "dev"; "napi"; "weight" ]
    "pre(check(ref(struct net_device), dev)) \
     pre(check(write, napi, sizeof(struct napi_struct)))"
    (fun args ->
      Netdev.netif_napi_add t.net ~dev:(arg 0 args) ~napi:(arg 1 args)
        ~weight:(arg 2 args);
      0L);
  d "napi_schedule" [ "napi" ] "pre(check(write, napi, sizeof(struct napi_struct)))"
    (fun args ->
      Netdev.napi_schedule t.net (arg 0 args);
      0L);
  (* --- interrupts ---
     The handler is a module-supplied callback function pointer passed
     by value: the module must already hold a CALL capability for it
     (the callback-argument contract of §2.2). *)
  d "request_irq" [ "irq"; "handler"; "dev_id" ] "pre(check(call, handler))"
    (fun args ->
      Irqchip.request_irq t.irq ~irq:(arg 0 args) ~handler:(arg 1 args)
        ~dev_id:(arg 2 args));
  d "free_irq" [ "irq" ] "" (fun args ->
      Irqchip.free_irq t.irq ~irq:(arg 0 args);
      0L);
  (* --- legacy port I/O (Guideline 3: special REF type io_port) --- *)
  d "outb" [ "port"; "value" ] "pre(check(ref(io_port), port))" (fun args ->
      Pci.outb t.pci ~port:(arg 0 args) ~value:(arg 1 args);
      0L);
  d "inb" [ "port" ] "pre(check(ref(io_port), port))" (fun args ->
      Int64.of_int (Pci.inb t.pci ~port:(arg 0 args)));
  (* --- PCI --- *)
  d "pci_register_driver" [ "drv" ] "pre(check(write, drv, sizeof(struct pci_driver)))"
    (fun args -> Int64.of_int (Pci.register_driver t.pci (arg 0 args)));
  d "pci_enable_device" [ "pcidev" ] "pre(check(ref(struct pci_dev), pcidev))"
    (fun args -> Pci.pci_enable_device t.pci (arg 0 args));
  d "pci_disable_device" [ "pcidev" ] "pre(check(ref(struct pci_dev), pcidev))"
    (fun args -> Pci.pci_disable_device t.pci (arg 0 args));
  d "pci_request_regions" [ "pcidev" ]
    "pre(check(ref(struct pci_dev), pcidev)) post(copy(pci_bar_caps(pcidev)))"
    (fun _args -> 0L);
  d "pci_request_ioport" [ "pcidev" ]
    "pre(check(ref(struct pci_dev), pcidev)) post(copy(ref(io_port), return))"
    (fun args -> Int64.of_int (Pci.ioport t.pci (arg 0 args)));
  d "pci_set_drvdata" [ "pcidev"; "data" ] "pre(check(ref(struct pci_dev), pcidev))"
    (fun args ->
      Pci.pci_set_drvdata t.pci (arg 0 args) (arg 1 args);
      0L);
  d "pci_get_drvdata" [ "pcidev" ] "pre(check(ref(struct pci_dev), pcidev))"
    (fun args -> Int64.of_int (Pci.pci_get_drvdata t.pci (arg 0 args)));
  (* --- sockets --- *)
  d "sock_register" [ "npf" ]
    "pre(check(write, npf, sizeof(struct net_proto_family)))" (fun args ->
      Sockets.sock_register t.sock (arg 0 args));
  d "sock_unregister" [ "family" ] "" (fun args ->
      Sockets.sock_unregister t.sock (arg 0 args);
      0L);
  (* --- device mapper --- *)
  d "dm_register_target" [ "tt" ] "pre(check(write, tt, sizeof(struct target_type)))"
    (fun args ->
      (* The target name is conveyed out of band at module setup; the
         kexport validates memory ownership of the ops table. *)
      ignore (arg 0 args);
      0L);
  (* --- sound --- *)
  d "snd_card_create" [ "dma_bytes" ] "post(copy(snd_card_caps(return)))" (fun args ->
      Int64.of_int (Sound.snd_card_create t.snd ~name:"card" ~dma_bytes:(arg 0 args)));
  d "snd_card_register" [ "card" ] "pre(check(ref(struct snd_card), card))"
    (fun args -> Sound.snd_card_register t.snd (arg 0 args));
  d "snd_pcm_period_elapsed" [ "card" ] "pre(check(ref(struct snd_card), card))"
    (fun args -> Sound.snd_pcm_period_elapsed t.snd (arg 0 args))

(** {1 Boot} *)

let boot (config : Lxfi.Config.t) : t =
  let kst = Kstate.boot () in
  Skbuff.define_layout kst.Kstate.types;
  Netdev.define_layout kst.Kstate.types;
  Pci.define_layout kst.Kstate.types;
  Sockets.define_layout kst.Kstate.types;
  Blockdev.define_layout kst.Kstate.types;
  Sound.define_layout kst.Kstate.types;
  Shm.define_layout kst.Kstate.types;
  let rt = Lxfi.Runtime.create ~kst ~config in
  let t =
    {
      kst;
      rt;
      net = Netdev.create kst;
      pci = Pci.create kst;
      sock = Sockets.create kst;
      blk = Blockdev.create kst;
      snd = Sound.create kst;
      shm = Shm.create kst;
      irq = Irqchip.create kst;
      nics = [];
    }
  in
  register_slot_types rt;
  register_iterators t;
  register_kexports t;
  Lxfi.Runtime.install rt;
  t

(** [add_nic t ~vendor ~device] plugs in a NIC and returns its pci_dev
    address; the hardware model is attached to the BAR. *)
let add_nic t ~vendor ~device =
  let dev = Pci.add_device t.pci ~vendor ~device ~bar_len:Nic.bar_len in
  let nic = Nic.create t.kst ~bar:(Pci.bar0 t.pci dev) in
  t.nics <- (dev, nic) :: t.nics;
  (dev, nic)

let nic_of t dev = List.assoc dev t.nics

(** [load t prog] — convenience: rewrite + load a module. *)
let load t prog = Lxfi.Loader.load t.rt prog

(** [as_user t f] runs [f] as an unprivileged task and reports whether
    the run escalated privileges (uid 0) — the exploit harness's
    success criterion. *)
let as_user t ?(comm = "attacker") f =
  let task = Kstate.spawn_task t.kst ~uid:1000 ~comm in
  let saved = t.kst.Kstate.current in
  Kstate.switch_to t.kst task;
  let restore () = Kstate.switch_to t.kst saved in
  match f task with
  | v ->
      let escalated =
        Hashtbl.mem t.kst.Kstate.run_queue task.Task.pid
        && Task.is_root t.kst.Kstate.mem t.kst.Kstate.types task
      in
      restore ();
      (v, escalated)
  | exception e ->
      restore ();
      raise e
